//! Offline stand-in for `serde_json`: serializes the workspace serde shim's
//! [`Value`] tree to JSON text and parses JSON text back.
//!
//! Covers the API this workspace uses — [`to_string`], [`to_string_pretty`],
//! [`from_str`] — with standard JSON syntax (string escapes, exponents,
//! `null`/`true`/`false`). Non-string map keys arrive here already encoded
//! as `[key, value]` pair arrays by the serde shim, so everything printed is
//! valid JSON.

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Compact JSON encoding.
///
/// # Errors
/// Never fails for tree-shaped values; `Result` kept for API parity.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON encoding (two-space indent).
///
/// # Errors
/// Never fails for tree-shaped values; `Result` kept for API parity.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
/// On malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_root(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
/// On malformed JSON.
pub fn value_from_str(text: &str) -> Result<Value, Error> {
    parse_value_root(text)
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, '[', ']', |o, x, d| {
            write_value(o, x, indent, d);
        }),
        Value::Map(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            '{',
            '}',
            |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if !empty {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        if f.fract() == 0.0 && f.abs() < 1e15 {
            // Keep integral floats readable and round-trippable.
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        // JSON has no Infinity/NaN; match serde_json's strictness loosely
        // by emitting null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_root(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8: it
                    // came from &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("bad UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value_tree() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("exchange \"A\"\n".into())),
            ("count".into(), Value::U64(42)),
            ("scale".into(), Value::F64(0.25)),
            ("neg".into(), Value::I64(-3)),
            (
                "items".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(value_from_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(value_from_str(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  "));
    }

    #[test]
    fn typed_round_trip() {
        let pairs: Vec<(u32, f64)> = vec![(1, 0.5), (2, 1.0)];
        let text = to_string_pretty(&pairs).unwrap();
        let back: Vec<(u32, f64)> = from_str(&text).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn errors_are_reported() {
        assert!(value_from_str("{").is_err());
        assert!(value_from_str("[1,]").is_err());
        assert!(value_from_str("12 34").is_err());
        assert!(from_str::<u32>("\"hi\"").is_err());
    }
}
