//! Offline stand-in for `proptest`.
//!
//! Deterministic random property testing with the combinator surface this
//! workspace's tests use: range strategies, tuples, [`strategy::Just`],
//! `prop_map`, [`collection::vec`] / `btree_map` / `btree_set`,
//! [`option::of`], `prop_oneof!`, [`any`], [`sample::Index`], and the
//! [`proptest!`] macro with `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Differences from the real crate, deliberate for an offline shim:
//! no shrinking (failures report the sampled inputs via plain `assert!`
//! panics), and the RNG streams differ (cases are seeded from the test
//! function's name, so runs are reproducible).

use std::ops::{Range, RangeInclusive};

/// Test-case RNG (xoshiro256++, seeded from the test name).
pub mod test_runner {
    /// Failure reported by a property body (`prop_assert!` early return
    /// or a helper returning `Result<_, TestCaseError>` used with `?`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from an arbitrary label (the test function name).
        #[must_use]
        pub fn deterministic(label: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw below `bound` (0 when `bound` is 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// Uniform `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Run configuration.
pub mod config {
    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value generators.
pub mod strategy {
    use super::TestRng;

    /// A random-value generator.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy (object-safe: `prop_map` requires `Sized`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Equal-weight choice between strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds from boxed options (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    }
}

use strategy::Strategy;

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

/// Full-domain generation (`any::<T>()`).
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::new(rng.unit_f64())
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub use arbitrary::any;

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Vec of `element` samples with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// BTreeMap with keys/values from the given strategies. The entry count
    /// is at most the drawn size (duplicate keys collapse, as upstream).
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.keys.sample(rng), self.values.sample(rng)))
                .collect()
        }
    }

    /// BTreeSet with elements from `element`; size caps as for maps.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// `Some` three times out of four, like upstream's default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Sampling helpers.
pub mod sample {
    /// A position into collections of then-unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(f64);

    impl Index {
        pub(crate) fn new(unit: f64) -> Self {
            Index(unit)
        }

        /// Resolves against a concrete length. Panics on `len == 0`,
        /// matching upstream.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 * len as f64) as usize).min(len - 1)
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` alias module (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Equal-weight alternative between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as $crate::strategy::BoxedStrategy<_>),+
        ])
    };
}

/// Property assertion (plain `assert!` — no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, ys in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::config::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                // Bodies may use `?` with helpers returning
                // `Result<_, TestCaseError>`, so the case runs in a
                // Result-returning closure, as upstream.
                let run = |rng: &mut $crate::test_runner::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                    $body
                    ::std::result::Result::Ok(())
                };
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    run(&mut rng)
                }));
                match result {
                    Ok(Ok(())) => {}
                    Ok(Err(err)) => panic!(
                        "proptest shim: property `{}` failed on case {case}/{}: {err} \
                         (no shrinking)",
                        stringify!($name),
                        config.cases
                    ),
                    Err(panic) => {
                        eprintln!(
                            "proptest shim: property `{}` failed on case {case}/{} (no shrinking)",
                            stringify!($name),
                            config.cases
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::config::ProptestConfig::default()) $($rest)*);
    };
}

// Re-exports so `proptest::option::of` and `proptest::collection::vec`
// resolve (tests use both `prop::` and `proptest::` paths).
pub use config::ProptestConfig;

#[allow(unused_imports)]
pub use strategy::{BoxedStrategy, Just};

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = (0u32..100, prop::collection::vec(any::<u8>(), 0..8));
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_runner::TestRng::deterministic("arms");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_samples_in_range(
            x in 5u32..10,
            maybe in prop::option::of(0u8..3),
            (lo, hi) in (0u64..50, 50u64..100),
        ) {
            prop_assert!((5..10).contains(&x));
            if let Some(m) = maybe {
                prop_assert!(m < 3);
            }
            prop_assert!(lo < hi);
        }

        #[test]
        fn mapped_collections(
            items in prop::collection::vec((0u16..4).prop_map(|v| v * 2), 1..20)
        ) {
            prop_assert!(!items.is_empty());
            prop_assert!(items.iter().all(|v| v % 2 == 0 && *v < 8));
        }
    }
}
