//! Derive macros for the workspace's offline `serde` stand-in.
//!
//! `syn`/`quote` are unavailable offline, so this parses the item's token
//! stream by hand. Supported shapes — everything this workspace derives on:
//! named/tuple/unit structs and enums with unit, tuple, or named-field
//! variants, all without generics. Honors `#[serde(default)]` and
//! `#[serde(default = "path")]` on named struct fields; fields of type
//! `Option<…>` default to `None` when the key is missing, matching real
//! serde. Any other shape produces a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    /// `Some(None)` for bare `#[serde(default)]`, `Some(Some(path))` for
    /// `#[serde(default = "path")]`.
    default: Option<Option<String>>,
    is_option: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct(String, Vec<Field>),
    TupleStruct(String, usize),
    UnitStruct(String),
    Enum(String, Vec<Variant>),
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match which {
                Trait::Serialize => gen_serialize(&item),
                Trait::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated code parses")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------- parsing

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Skips attributes, returning any `#[serde(default…)]` annotation seen.
    fn skip_attrs(&mut self) -> Option<Option<String>> {
        let mut default = None;
        while self.at_punct('#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                if let Some(d) = parse_serde_default(&g.stream()) {
                    default = Some(d);
                }
            }
        }
        default
    }

    fn skip_vis(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!(
                "serde shim derive: expected identifier, found {other:?}"
            )),
        }
    }
}

/// Recognizes `serde ( default )` / `serde ( default = "path" )` inside an
/// attribute's `[...]` group.
fn parse_serde_default(stream: &TokenStream) -> Option<Option<String>> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(kw)] if kw.to_string() == "default" => Some(None),
                [TokenTree::Ident(kw), TokenTree::Punct(eq), TokenTree::Literal(path)]
                    if kw.to_string() == "default" && eq.as_char() == '=' =>
                {
                    let raw = path.to_string();
                    Some(Some(raw.trim_matches('"').to_owned()))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kind = c.expect_ident()?;
    let name = c.expect_ident()?;
    if c.at_punct('<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        ));
    }
    match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct(name, parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct(name, count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct(name)),
            other => Err(format!(
                "serde shim derive: unsupported struct body for `{name}`: {other:?}"
            )),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum(name, parse_variants(g.stream())?))
            }
            other => Err(format!(
                "serde shim derive: unsupported enum body for `{name}`: {other:?}"
            )),
        },
        other => Err(format!(
            "serde shim derive: unsupported item kind `{other}`"
        )),
    }
}

/// Skips a type, tracking angle-bracket depth so commas inside generics
/// don't terminate the field. Returns the first identifier of the type
/// (enough to recognize `Option<…>`).
fn skip_type(c: &mut Cursor) -> String {
    let mut head = String::new();
    let mut depth = 0i32;
    while let Some(t) = c.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Ident(i) if head.is_empty() => head = i.to_string(),
            _ => {}
        }
        c.next();
    }
    head
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let default = c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        let name = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        let head = skip_type(&mut c);
        fields.push(Field {
            name,
            default,
            is_option: head == "Option",
        });
        if c.at_punct(',') {
            c.next();
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while c.peek().is_some() {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        skip_type(&mut c);
        count += 1;
        if c.at_punct(',') {
            c.next();
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident()?;
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the separating comma.
        while c.peek().is_some() && !c.at_punct(',') {
            c.next();
        }
        if c.at_punct(',') {
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({n:?}), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct(name, 1) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct(name, n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::UnitStruct(name) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?}))"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vname:?}), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Array(::std::vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({n:?}), ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Map(::std::vec![{}]))])",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

/// The `None =>` arm for one named field: default expression or error.
fn missing_field_expr(field: &Field, context: &str) -> String {
    match &field.default {
        Some(Some(path)) => format!("{path}()"),
        Some(None) => "::core::default::Default::default()".to_owned(),
        None if field.is_option => "::std::option::Option::None".to_owned(),
        None => format!(
            "return ::std::result::Result::Err(::serde::DeError::missing({:?}, {context:?}))",
            field.name
        ),
    }
}

fn gen_named_field_inits(fields: &[Field], source: &str, context: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{n}: match {source}.get({n:?}) {{\n\
                     ::std::option::Option::Some(x) => <_ as ::serde::Deserialize>::from_value(x)?,\n\
                     ::std::option::Option::None => {{ {} }}\n\
                 }}",
                missing_field_expr(f, context),
                n = f.name,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let inits = gen_named_field_inits(fields, "v", name);
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if v.as_map().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::DeError::expected(\"map\", {name:?}, v));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{\n{inits}\n}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct(name, 1) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(<_ as ::serde::Deserialize>::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct(name, n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("<_ as ::serde::Deserialize>::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", {name:?}, v))?;\n\
                         if items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::custom(\"wrong tuple arity\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::UnitStruct(name) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum(name, variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("{n:?} => ::std::result::Result::Ok({name}::{n})", n = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(<_ as ::serde::Deserialize>::from_value(payload)?))"
                        )),
                        VariantShape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("<_ as ::serde::Deserialize>::from_value(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let items = payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", {vname:?}, payload))?;\n\
                                     if items.len() != {n} {{\n\
                                         return ::std::result::Result::Err(::serde::DeError::custom(\"wrong variant arity\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let context = format!("{name}::{vname}");
                            let inits = gen_named_field_inits(fields, "payload", &context);
                            Some(format!(
                                "{vname:?} => {{\n\
                                     if payload.as_map().is_none() {{\n\
                                         return ::std::result::Result::Err(::serde::DeError::expected(\"map\", {vname:?}, payload));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname} {{\n{inits}\n}})\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                             return match s {{\n\
                                 {unit}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::custom(\n\
                                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }};\n\
                         }}\n\
                         if let ::std::option::Option::Some(entries) = v.as_map() {{\n\
                             if entries.len() == 1 {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 return match tag.as_str() {{\n\
                                     {data}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::custom(\n\
                                         ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }};\n\
                             }}\n\
                         }}\n\
                         ::std::result::Result::Err(::serde::DeError::expected(\"enum\", {name:?}, v))\n\
                     }}\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(",\n"))
                },
            )
        }
    }
}
