//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `Bencher::{iter, iter_batched}`, `Throughput`,
//! `BatchSize`, `criterion_group!` / `criterion_main!` — with simple
//! wall-clock timing: each benchmark runs a short calibration pass, then
//! `sample_size` timed samples, and reports the median per-iteration time
//! (plus derived throughput) to stdout. No statistics engine, plots, or
//! saved baselines.

use std::time::{Duration, Instant};

/// How much work one iteration represents, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many logical elements.
    Elements(u64),
}

/// Hint for `iter_batched` setup cost; the shim treats all variants alike.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Cheap per-iteration setup.
    SmallInput,
    /// Expensive per-iteration setup.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed fresh input from `setup` each iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 30,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark (its own single-entry group).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let (group, entry) = match name.split_once('/') {
            Some((g, e)) => (g.to_string(), e.to_string()),
            None => (name.clone(), name),
        };
        run_benchmark(&group, &entry, None, 30, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.into(), self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Target wall time per sample; keeps total runtime bounded while letting
/// sub-microsecond routines accumulate enough iterations to time reliably.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);

fn run_benchmark<F>(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Calibration: find an iteration count filling roughly SAMPLE_TARGET.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_TARGET || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (SAMPLE_TARGET.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut per_iter_ns: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format_rate(n as f64 / (median / 1e9), "B/s"),
        Throughput::Elements(n) => format_rate(n as f64 / (median / 1e9), "elem/s"),
    });
    match rate {
        Some(rate) => println!(
            "{group}/{id}: median {} / iter, {rate} ({sample_size} samples x {iters} iters)",
            format_ns(median)
        ),
        None => println!(
            "{group}/{id}: median {} / iter ({sample_size} samples x {iters} iters)",
            format_ns(median)
        ),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

/// Bundles benchmark functions under one name, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut ran = 0u64;
        g.bench_function("counts", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |mut v| {
                    assert_eq!(v.len(), 3);
                    v.push(4);
                    v
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
