//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace ships minimal local implementations of the external crates
//! it uses. This one covers the subset of `bytes` the BGP/MRT codecs need:
//! big-endian cursor reads over `&[u8]`, big-endian appends to a growable
//! buffer, and a frozen immutable byte container.
//!
//! Semantics match the real crate for the covered API: `get_*`/`advance`
//! panic when the source is too short, `BytesMut` grows like a `Vec<u8>`,
//! and `freeze` produces a cheaply cloneable [`Bytes`].

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read cursor over a byte source (big-endian getters).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The readable slice.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write sink for big-endian appends.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Reserves additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Freezes into an immutable, cheaply cloneable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { inner: v.to_vec() }
    }
}

/// Immutable shared byte container.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            inner: Vec::new().into(),
        }
    }
}

impl Bytes {
    /// Empty container.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a static/borrowed slice in.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { inner: data.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { inner: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { inner: v.into() }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.inner.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.inner
    }

    fn advance(&mut self, cnt: usize) {
        let rest: Vec<u8> = self.inner[cnt..].to_vec();
        self.inner = rest.into();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_cursor_reads_big_endian() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07];
        let mut s = data.as_slice();
        assert_eq!(s.get_u8(), 0x01);
        assert_eq!(s.get_u16(), 0x0203);
        assert_eq!(s.get_u32(), 0x0405_0607);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn bytes_mut_appends_and_freezes() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u16(0xbeef);
        b.put_u8(1);
        b.put_bytes(0xff, 2);
        b.extend_from_slice(&[9]);
        assert_eq!(&b[..], &[0xbe, 0xef, 1, 0xff, 0xff, 9]);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 6);
        assert_eq!(frozen.clone(), frozen);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut s: &[u8] = &[1];
        let _ = s.get_u32();
    }
}
