//! Offline stand-in for `crossbeam`.
//!
//! Two pieces this workspace needs:
//!
//! * [`thread::scope`] — the crossbeam 0.8 scoped-thread API (spawn
//!   closures take a `&Scope` argument, the call returns
//!   `thread::Result<T>`), implemented on top of `std::thread::scope`.
//! * [`channel`] — bounded MPMC channels with blocking send/recv and
//!   disconnect semantics, implemented with a mutex-guarded ring plus
//!   condvars. Throughput is far below lock-free crossbeam, but the
//!   pipeline moves large batches per message precisely so channel
//!   overhead is amortised.

/// Scoped threads mirroring `crossbeam::thread`.
pub mod thread {
    /// Result of a scope: `Err` when any spawned thread panicked.
    pub type Result<T> = std::thread::Result<T>;

    /// Handle passed to the scope closure; spawns scoped workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker. The closure's argument mirrors crossbeam's
        /// nested-scope handle; call sites here use `|_|` so it is `()`.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Runs `f` with a scope handle, joining all spawned threads before
    /// returning. Panics in workers surface as `Err`, like crossbeam 0.8
    /// (std's scope would propagate them; we catch to keep the seed
    /// call sites' `.expect("worker panicked")` meaningful).
    pub fn scope<'env, F, T>(f: F) -> Result<T>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Bounded MPMC channels mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: usize,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error from sending into a channel with no receivers left.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error from receiving on an empty channel with no senders left.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Result of a non-blocking [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Channel is at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    /// Sending half; clone for multiple producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clone for multiple consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded channel: sends block while `capacity` items are
    /// queued, giving pipelines backpressure instead of unbounded growth.
    #[must_use]
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "bounded channel needs capacity >= 1");
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the item is queued or every receiver is gone.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(item));
                }
                if state.items.len() < self.shared.capacity {
                    state.items.push_back(item);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }

        /// Queues without blocking; reports a full or disconnected channel.
        pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(item));
            }
            if state.items.len() >= self.shared.capacity {
                return Err(TrySendError::Full(item));
            }
            state.items.push_back(item);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or all senders are gone and the
        /// queue has drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Iterates until the channel is drained and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received items; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError, TrySendError};
    use super::thread;

    #[test]
    fn scope_joins_workers() {
        let mut counts = vec![0u32; 4];
        thread::scope(|scope| {
            for slot in counts.iter_mut() {
                scope.spawn(move |_| *slot += 1);
            }
        })
        .expect("no panics");
        assert_eq!(counts, vec![1, 1, 1, 1]);
    }

    #[test]
    fn scope_reports_worker_panic() {
        let result = thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn channel_roundtrip_and_disconnect() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn channel_backpressure_across_threads() {
        let (tx, rx) = bounded::<u64>(4);
        let total: u64 = thread::scope(|scope| {
            let producer = {
                let tx = tx;
                scope.spawn(move |_| {
                    for i in 0..1000u64 {
                        tx.send(i).unwrap();
                    }
                })
            };
            let consumer = scope.spawn(move |_| rx.iter().sum::<u64>());
            producer.join().unwrap();
            consumer.join().unwrap()
        })
        .expect("no panics");
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn multi_consumer_drains_everything() {
        let (tx, rx) = bounded::<u64>(8);
        let sum: u64 = thread::scope(|scope| {
            let workers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move |_| rx.iter().sum::<u64>())
                })
                .collect();
            drop(rx);
            for i in 0..500u64 {
                tx.send(i).unwrap();
            }
            drop(tx);
            workers.into_iter().map(|w| w.join().unwrap()).sum()
        })
        .expect("no panics");
        assert_eq!(sum, 499 * 500 / 2);
    }
}
