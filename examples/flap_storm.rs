//! Route-flap storm reproduction (§3 of the paper).
//!
//! "A router which fails under heavy routing instability can instigate a
//! 'route flap storm.' In this mode of pathological oscillation, overloaded
//! routers are marked as unreachable by BGP peers as they fail to maintain
//! the required interval of Keep-Alive transmissions. … This increased load
//! will cause yet more routers to fail and initiate a storm that begins
//! affecting ever larger sections of the Internet."
//!
//! The example drives a small exchange into an update storm and contrasts
//! two victim configurations: the era's update-processing router (keepalives
//! compete with updates for the CPU) and the fixed design where "BGP traffic
//! is given a higher priority and Keep-Alive messages persist even under
//! heavy instability".
//!
//! ```sh
//! cargo run --release --example flap_storm
//! ```

use iri_bgp::types::{Asn, Prefix};
use iri_netsim::{CpuModel, CrashModel, RouterConfig, World, MINUTE, SECOND};
use std::net::Ipv4Addr;

/// Runs the storm scenario; returns (victim session flaps, victim crashes,
/// storm withdrawals seen at the far side).
fn run(keepalive_priority: bool, crash_threshold: u32) -> (u64, u64, u64) {
    let mut world = World::new(0xf1a9);

    // The instability source: a provider with many rapidly flapping
    // customer prefixes.
    let source = world.add_router(RouterConfig::pathological(
        "source",
        Asn(666),
        Ipv4Addr::new(10, 0, 0, 1),
    ));
    // The victim: an era-typical router in the middle.
    let mut victim_cfg = RouterConfig::well_behaved("victim", Asn(100), Ipv4Addr::new(10, 0, 0, 2));
    victim_cfg.cpu = CpuModel {
        // "a relatively light Motorola 68000 series processor": ~5 ms of
        // policy evaluation per prefix event — 200 events/s saturates it.
        update_cost_us: 5_000,
        keepalive_priority,
    };
    victim_cfg.crash = Some(CrashModel {
        updates_per_sec_threshold: crash_threshold,
        window_ms: 5_000,
        reboot_ms: 60_000,
    });
    let victim = world.add_router(victim_cfg);
    // The far side, observing the blast radius.
    let far = world.add_router(RouterConfig::well_behaved(
        "far",
        Asn(200),
        Ipv4Addr::new(10, 0, 0, 3),
    ));
    world.connect(source, victim, 2);
    world.connect(victim, far, 2);
    world.attach_monitor(far.to_owned());

    // 2500 prefixes flapping with window-crossing outages (down longer
    // than the 30 s packing timer, so every cycle transmits W then A):
    // a sustained update storm far beyond the victim's CPU.
    for i in 0..2_500u32 {
        let pfx = Prefix::from_raw(0x0a00_0000 | (i << 8), 24);
        world.schedule_originate(10 * SECOND, source, pfx);
        for k in 0..12u64 {
            world.schedule_flap(
                MINUTE + k * 75 * SECOND + u64::from(i % 7) * SECOND,
                source,
                pfx,
                40 * SECOND,
            );
        }
    }

    world.start();
    world.run_until(20 * MINUTE);

    let victim_router = world.router(victim);
    let flaps = victim_router.counters.session_flaps;
    let crashes = victim_router.counters.crashes;
    let withdrawals = world.monitor(far).map_or(0, |m| {
        m.updates
            .iter()
            .filter_map(|u| match &u.message {
                iri_bgp::message::Message::Update(up) => Some(up.withdrawn.len() as u64),
                _ => None,
            })
            .sum()
    });
    (flaps, crashes, withdrawals)
}

fn main() {
    println!("=== route-flap storm (§3) ===\n");
    println!("storm source: 2500 prefixes flapping every 75s (40s outages) for 15 minutes\n");

    let (flaps_a, crashes_a, wd_a) = run(false, 300);
    println!("era router (updates and keepalives share a 68000-class CPU, crash @300/s):");
    println!("  victim session flaps: {flaps_a}");
    println!("  victim crashes:       {crashes_a}");
    println!("  withdrawals blasted past the victim: {wd_a}\n");

    let (flaps_b, crashes_b, wd_b) = run(true, u32::MAX);
    println!("fixed router (keepalive priority, storm-proof):");
    println!("  victim session flaps: {flaps_b}");
    println!("  victim crashes:       {crashes_b}");
    println!("  withdrawals blasted past the victim: {wd_b}\n");

    assert!(
        crashes_a + flaps_a > flaps_b + crashes_b,
        "the era router must suffer more than the fixed router"
    );
    assert_eq!(crashes_b, 0, "the fixed router must not crash");
    println!(
        "storm amplification confirmed: the overloaded router added {} session \
         flaps / {} crashes that the fixed design avoids entirely.",
        flaps_a, crashes_a
    );
}
