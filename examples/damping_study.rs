//! Route-flap damping trade-off study (§3: "dampening algorithms, however,
//! are not a panacea").
//!
//! Sweeps the damping half-life and measures both sides of the trade:
//! how many flap updates the damper absorbs, and how long a *legitimate*
//! re-announcement is held down after earlier instability ("artificial
//! connectivity problems").
//!
//! ```sh
//! cargo run --release --example damping_study
//! ```

use iri_bgp::types::Prefix;
use iri_rib::damping::{DampingConfig, DampingVerdict, FlapKind, RouteDamper};

/// One sweep point: a prefix flaps `n_flaps` times at `spacing_ms`, then a
/// legitimate announcement arrives `settle_ms` later.
fn evaluate(cfg: DampingConfig, n_flaps: u64, spacing_ms: u64, settle_ms: u64) -> (u64, f64) {
    let pfx: Prefix = "192.42.113.0/24".parse().unwrap();
    let mut damper = RouteDamper::new(cfg);
    let mut suppressed = 0u64;
    for i in 0..n_flaps {
        let t = i * spacing_ms;
        let kind = if i % 2 == 0 {
            FlapKind::Withdrawal
        } else {
            FlapKind::Announcement
        };
        if matches!(
            damper.record_flap(pfx, kind, t),
            DampingVerdict::Suppressed { .. }
        ) {
            suppressed += 1;
        }
    }
    let legit_at = n_flaps * spacing_ms + settle_ms;
    let delay_min = match damper.record_flap(pfx, FlapKind::Announcement, legit_at) {
        DampingVerdict::Suppressed { reuse_at } => (reuse_at - legit_at) as f64 / 60_000.0,
        DampingVerdict::Pass => 0.0,
    };
    (suppressed, delay_min)
}

fn main() {
    println!("=== route-flap damping: suppression vs connectivity delay ===\n");
    println!("workload: 30 flaps at 45s spacing, then a legitimate announcement 2min later\n");
    println!(
        "{:>14} {:>12} {:>12} {:>22}",
        "half-life", "suppressed", "of flaps", "legit delay (min)"
    );

    let mut last_suppressed = 0;
    let mut last_delay = 0.0;
    for half_life_min in [5u64, 10, 15, 30, 60] {
        let cfg = DampingConfig {
            half_life: half_life_min * 60_000,
            ..DampingConfig::default()
        };
        let (suppressed, delay) = evaluate(cfg, 30, 45_000, 120_000);
        println!(
            "{:>11}min {:>12} {:>11}% {:>22.1}",
            half_life_min,
            suppressed,
            suppressed * 100 / 30,
            delay
        );
        last_suppressed = suppressed;
        last_delay = delay;
    }

    println!("\nno damping: 0 suppressed, 0 delay — every flap propagates.");
    assert!(last_suppressed > 15, "long half-life must absorb the storm");
    assert!(
        last_delay > 10.0,
        "long half-life must delay legitimate reachability (the trade-off)"
    );

    // The stability side-benefit: a single well-behaved announcement is
    // never touched.
    let cfg = DampingConfig::default();
    let mut damper = RouteDamper::new(cfg);
    let calm: Prefix = "10.0.0.0/8".parse().unwrap();
    assert_eq!(
        damper.record_flap(calm, FlapKind::Announcement, 0),
        DampingVerdict::Pass
    );
    println!("\nstable routes are untouched; unstable ones pay with reachability delay.");
    println!("'Route dampening algorithms, however, are not a panacea.'");
}
