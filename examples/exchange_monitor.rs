//! Exchange-point monitor: replays a simulated day at Mae-East slot by
//! slot, printing a live-style instability ticker — the operator's view
//! the Routing Arbiter statistics pages gave in 1996.
//!
//! ```sh
//! cargo run --release --example exchange_monitor -- --scale 0.05
//! ```

use iri_bench::{arg_f64, arg_u64, logged_to_events, ExperimentConfig};
use iri_core::stats::bins::{instability_filter, ten_minute_bins};
use iri_core::stats::daily::provider_daily_totals;
use iri_core::taxonomy::UpdateClass;
use iri_core::Classifier;
use iri_topology::events::Calendar;
use iri_topology::scenario::run_day;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_f64(&args, "--scale", 0.05);
    let day = arg_u64(&args, "--day", 45) as u32;

    let (cfg, graph) = ExperimentConfig::at_scale(scale);
    let (month, dom) = Calendar::month_day(day);
    let weekday = Calendar::weekday(day);
    println!("=== Mae-East monitor — {month} {dom}, 1996 ({weekday:?}), scale {scale} ===\n");

    let result = run_day(&cfg.scenario, &graph, day);
    let events = logged_to_events(&result.events_after_warmup());
    let mut classifier = Classifier::new();
    let classified = classifier.classify_all(&events);
    let bins = ten_minute_bins(&classified, instability_filter);
    let all_bins = ten_minute_bins(&classified, |_| true);

    // Hourly ticker.
    println!("hour  instability  all-updates  bar");
    for h in 0..24 {
        let inst: u64 = bins[h * 6..(h + 1) * 6].iter().sum();
        let all: u64 = all_bins[h * 6..(h + 1) * 6].iter().sum();
        let bar_len = (all / 400).min(48) as usize;
        println!("{h:>4}  {inst:>11}  {all:>11}  {}", "#".repeat(bar_len));
    }

    // Summary like the Merit IPMA pages.
    println!("\n--- daily summary ---");
    println!("prefix events: {}", classified.len());
    let mut per_class: Vec<(UpdateClass, u64)> = UpdateClass::ALL
        .iter()
        .map(|&c| (c, classifier.count(c)))
        .collect();
    per_class.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (c, n) in per_class {
        if n > 0 {
            println!("  {:<14} {:>8}", c.label(), n);
        }
    }
    println!("\n--- per-provider totals (Table 1 view) ---");
    for row in provider_daily_totals(&classified) {
        let name = graph
            .providers
            .iter()
            .find(|p| p.asn == row.asn)
            .map_or_else(|| row.asn.to_string(), |p| p.name.clone());
        println!(
            "  {:<16} announce {:>7}  withdraw {:>7}  unique {:>5}",
            name, row.announce, row.withdraw, row.unique_prefixes
        );
    }
    println!(
        "\ntable: {} prefixes, {} multihomed ({:.0}%)",
        result.census.prefixes,
        result.census.multihomed,
        100.0 * result.census.multihomed_fraction()
    );
    assert!(!classified.is_empty());
}
