//! Quickstart: simulate a small exchange point for one hour, log the BGP
//! traffic at the route server exactly as the Routing Arbiter did, write
//! and re-read the log as MRT, classify every update with the paper's
//! taxonomy, and print the breakdown.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iri_bgp::types::Prefix;
use iri_core::input::events_from_mrt;
use iri_core::stats::breakdown::breakdown;
use iri_core::taxonomy::UpdateClass;
use iri_core::Classifier;
use iri_mrt::{MrtReader, MrtWriter};
use iri_netsim::{
    build_exchange, provider_mix, CsuFault, ExchangePoint, World, HOUR, MINUTE, SECOND,
};

fn main() {
    // 1. Build a scaled-down Mae-East: a route server plus six providers,
    //    some running the paper's pathological (stateless, unjittered-30s)
    //    router profile.
    let mut world = World::new(0x1996);
    let cfgs = provider_mix(ExchangePoint::MaeEast, 0.1, 0.5, 7000);
    let exchange = build_exchange(&mut world, ExchangePoint::MaeEast, cfgs);
    println!(
        "built {} with {} providers + 1 route server",
        exchange.exchange.name(),
        exchange.providers.len()
    );

    // 2. Give the first provider a customer behind a CSU-afflicted leased
    //    line (30-second clock-drift beat) and originate some stable
    //    prefixes elsewhere.
    let flappy: Prefix = "192.42.113.0/24".parse().unwrap();
    world.add_access_link(
        exchange.providers[0],
        vec![flappy],
        Some(CsuFault::beat_30s(2 * MINUTE)),
    );
    for (i, &provider) in exchange.providers.iter().enumerate() {
        let stable = Prefix::from_raw(0x1800_0000 | ((i as u32) << 16), 16);
        world.schedule_originate(10 * SECOND, provider, stable);
    }
    // An explicit flap storm seed: one provider withdraws and re-announces
    // a prefix a few times.
    let bouncy: Prefix = "198.32.5.0/24".parse().unwrap();
    world.schedule_originate(15 * SECOND, exchange.providers[1], bouncy);
    for k in 0..5u64 {
        world.schedule_flap(
            5 * MINUTE + k * 7 * MINUTE,
            exchange.providers[1],
            bouncy,
            90 * SECOND,
        );
    }

    // 3. Run one simulated hour.
    world.start();
    world.run_until(HOUR);
    let monitor = world
        .take_monitor(exchange.route_server)
        .expect("monitored");
    println!(
        "route server heard {} BGP updates ({} prefix events) in one hour",
        monitor.updates.len(),
        monitor.prefix_event_count()
    );

    // 4. Persist the log as MRT (what the 1996 collectors stored) and read
    //    it back — the analysis only ever sees the log.
    let records = monitor.to_mrt(
        iri_netsim::exchange::ROUTE_SERVER_ASN,
        world.router(exchange.route_server).cfg.addr,
        833_500_000,
    );
    let mut buf = Vec::new();
    let mut writer = MrtWriter::new(&mut buf);
    for r in &records {
        writer.write(r).expect("serialize MRT");
    }
    println!("MRT log: {} records, {} bytes", records.len(), buf.len());

    let mut reader = MrtReader::new(buf.as_slice());
    let replayed: Vec<_> = reader
        .iter()
        .collect::<Result<_, _>>()
        .expect("MRT round-trip");
    assert_eq!(replayed.len(), records.len());

    // 5. Classify with the paper's taxonomy and report.
    let events = events_from_mrt(&replayed, 833_500_000);
    let mut classifier = Classifier::new();
    let classified = classifier.classify_all(&events);
    let b = breakdown(&classified);
    println!("\nclassification of {} prefix events:", b.total());
    for class in UpdateClass::ALL {
        println!("  {:<14} {:>6}", class.label(), b.get(class));
    }
    println!("\ninstability (AADiff+WADiff+WADup): {}", b.instability());
    println!("pathological (AADup+WWDup):        {}", b.pathological());
    println!(
        "policy fluctuations flagged:       {}",
        classifier.policy_change_count()
    );
    assert!(b.total() > 0, "the hour must produce classified updates");
    println!("\nquickstart complete.");
}
