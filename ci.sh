#!/usr/bin/env sh
# Tier-1 verification + lint gate. Run before every push.
#
#   ./ci.sh            # build, test, clippy, fmt, doc
#
# The workspace builds fully offline (crates.io stand-ins live in shims/),
# so this needs no network access.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy -q --workspace --all-targets -- -D warnings"
cargo clippy -q --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q --workspace

echo "ci: all green"
