#!/usr/bin/env sh
# Tier-1 verification + lint gate. Run before every push.
#
#   ./ci.sh            # build, test, clippy, fmt, doc
#
# The workspace builds fully offline (crates.io stand-ins live in shims/),
# so this needs no network access.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy -q --workspace --all-targets -- -D warnings"
cargo clippy -q --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q --workspace

echo "==> fault-injection suite (crash matrix, retries, corruption properties)"
cargo test -q -p iri-store --test fault_injection

echo "==> crash-recovery matrix in release mode"
cargo test --release -q -p iri-store --test fault_injection crash_matrix

echo "==> store equivalence at paper scale (3M records, release)"
IRI_EQUIV_RECORDS=3000000 cargo test --release -q -p iri-bench --test store_equivalence

echo "==> bench_store (regenerates BENCH_store.json)"
cargo run --release -q -p iri-bench --bin bench_store
python3 -m json.tool BENCH_store.json > /dev/null
echo "    BENCH_store.json is well-formed JSON"

echo "==> bench_serve --smoke (concurrent serving correctness gate)"
cargo run --release -q -p iri-bench --bin bench_serve -- --smoke --out target/BENCH_serve_smoke.json
python3 -m json.tool target/BENCH_serve_smoke.json > /dev/null
echo "    bench_serve smoke report is well-formed JSON"
python3 -m json.tool BENCH_serve.json > /dev/null
echo "    BENCH_serve.json is well-formed JSON"

echo "ci: all green"
