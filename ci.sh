#!/usr/bin/env sh
# Tier-1 verification + lint gate. Run before every push.
#
#   ./ci.sh            # build, test, clippy, fmt, doc
#
# The workspace builds fully offline (crates.io stand-ins live in shims/),
# so this needs no network access.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy -q --workspace --all-targets -- -D warnings"
cargo clippy -q --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q --workspace

echo "==> fault-injection suite (crash matrix, retries, corruption properties)"
cargo test -q -p iri-store --test fault_injection

echo "==> crash-recovery matrix in release mode"
cargo test --release -q -p iri-store --test fault_injection crash_matrix

echo "==> store equivalence at paper scale (3M records, release)"
IRI_EQUIV_RECORDS=3000000 cargo test --release -q -p iri-bench --test store_equivalence

echo "==> bench_store --smoke (prune-ratio, query-speedup, batched-sync gates)"
cargo run --release -q -p iri-bench --bin bench_store -- --smoke \
    --out target/BENCH_store_smoke.json --dir target/bench_store_smoke.store
python3 -c "
import json, sys
r = json.load(open('target/BENCH_store_smoke.json'))
assert r['schema'] == 'bench-store-v3', r['schema']
assert r['reports_identical'] is True
assert r['windowed_prune_ratio'] >= 0.9, r['windowed_prune_ratio']
assert r['windowed_query_speedup'] >= 4.0, r['windowed_query_speedup']
assert r['batched_sync_speedup'] >= 0.995, r['batched_sync_speedup']
" || { echo "    bench_store smoke gates failed"; exit 1; }
echo "    bench_store smoke gates passed"
python3 -c "
import json, sys
r = json.load(open('BENCH_store.json'))
assert r['schema'] == 'bench-store-v3', r['schema']
for key in ('effective_cores', 'windowed_prune_ratio', 'windowed_query_speedup',
            'batched_sync_speedup', 'reports_identical', 'queries', 'ingest'):
    assert key in r, key
" || { echo "    committed BENCH_store.json is not a well-formed v3 report"; exit 1; }
echo "    BENCH_store.json is well-formed bench-store-v3 JSON"

echo "==> bench_serve --smoke (concurrent serving correctness gate)"
cargo run --release -q -p iri-bench --bin bench_serve -- --smoke --out target/BENCH_serve_smoke.json
python3 -m json.tool target/BENCH_serve_smoke.json > /dev/null
echo "    bench_serve smoke report is well-formed JSON"
python3 -m json.tool BENCH_serve.json > /dev/null
echo "    BENCH_serve.json is well-formed JSON"

echo "==> bench_watch --smoke (incident detection precision/recall gate)"
cargo run --release -q -p iri-bench --bin bench_watch -- --smoke --out target/BENCH_watch_smoke.json
python3 -m json.tool target/BENCH_watch_smoke.json > /dev/null
echo "    bench_watch smoke report is well-formed JSON"
python3 -m json.tool BENCH_watch.json > /dev/null
echo "    BENCH_watch.json is well-formed JSON"

echo "==> bench_obs (observability overhead gate, spans + registry on)"
cargo run --release -q -p iri-bench --bin bench_obs -- --records 1000000 --iters 3 --out target/BENCH_obs_ci.json
python3 -c "
import json, sys
r = json.load(open('target/BENCH_obs_ci.json'))
worst = max(r['obs_overhead_pct_jobs1'], r['obs_overhead_pct_jobs4'])
sys.exit(0 if worst <= r['budget_pct'] else 1)
" || { echo "    bench_obs: instrumentation overhead above the 5% budget"; exit 1; }
echo "    observability overhead within the 5% budget"

echo "==> scenario packs: strict-parse every pack in packs/"
for p in packs/*.toml; do
    ./target/release/run_scenario --pack "$p" --check
done

echo "==> scenario pack end-to-end smoke (1 simulated hour, streaming runner)"
rm -rf target/ci_pack_smoke.store target/ci_pack_smoke.store-ribspill
./target/release/run_scenario --pack packs/quiet.toml \
    --store target/ci_pack_smoke.store --hours 1 --report-json target/ci_pack_smoke.json
python3 -c "
import json, sys
r = json.load(open('target/ci_pack_smoke.json'))
sys.exit(0 if r['events_written'] > 0 and r['store_generation'] > 0 else 1)
" || { echo "    pack smoke run committed nothing"; exit 1; }
echo "    quiet pack streamed 1 simulated hour into a live store"

echo "==> chain kill-and-resume smoke (record, kill at a chunk boundary, resume)"
rm -rf target/ci_chain_ref.store target/ci_chain_ref.store-chain \
       target/ci_chain_ref.store-ribspill target/ci_chain_res.store \
       target/ci_chain_res.store-chain target/ci_chain_res.store-ribspill
./target/release/run_scenario --pack packs/quiet.toml \
    --store target/ci_chain_ref.store --hours 1 --record > /dev/null
code=0
./target/release/run_scenario --pack packs/quiet.toml \
    --store target/ci_chain_res.store --hours 1 --record \
    --kill-after-chunks 2 > /dev/null || code=$?
[ "$code" -eq 9 ] || { echo "    --kill-after-chunks must exit 9, got $code"; exit 1; }
./target/release/run_scenario --pack packs/quiet.toml \
    --store target/ci_chain_res.store --hours 1 --resume > /dev/null
python3 - target/ci_chain_ref.store target/ci_chain_res.store \
          target/ci_chain_ref.store-chain target/ci_chain_res.store-chain <<'EOF'
import os, sys

def snap(root):
    out = {}
    for dirpath, dirnames, filenames in os.walk(root):
        rel = os.path.relpath(dirpath, root)
        # Crash debris the commit protocol may leave behind is not part
        # of the committed state.
        if rel.split(os.sep)[0] in ("quarantine", "retired"):
            dirnames[:] = []
            continue
        for f in filenames:
            p = os.path.join(dirpath, f)
            with open(p, "rb") as fh:
                out[os.path.relpath(p, root)] = fh.read()
    return out

for a, b in ((sys.argv[1], sys.argv[2]), (sys.argv[3], sys.argv[4])):
    sa, sb = snap(a), snap(b)
    assert sa.keys() == sb.keys(), f"{a} vs {b}: {sorted(sa.keys() ^ sb.keys())}"
    for k in sa:
        assert sa[k] == sb[k], f"{a} vs {b}: {k} differs"
    assert sa, f"{a}: empty"
EOF
echo "    resumed store and chain are byte-identical to the unkilled run's"

echo "==> chain replay-equivalence smoke (paper-1996 pack, 1 simulated hour)"
rm -rf target/ci_replay_rec.store target/ci_replay_rec.store-chain \
       target/ci_replay_rec.store-ribspill target/ci_replay_rep.store \
       target/ci_replay_rep.store-chain target/ci_replay_rep.store-ribspill
./target/release/run_scenario --pack packs/paper_1996.toml \
    --store target/ci_replay_rec.store --hours 1 --record > /dev/null
./target/release/run_scenario --pack packs/paper_1996.toml \
    --store target/ci_replay_rep.store --hours 1 --replay \
    --chain target/ci_replay_rec.store-chain > /dev/null
python3 - target/ci_replay_rec.store target/ci_replay_rep.store <<'EOF'
import os, sys

def snap(root):
    out = {}
    for dirpath, dirnames, filenames in os.walk(root):
        rel = os.path.relpath(dirpath, root)
        if rel.split(os.sep)[0] in ("quarantine", "retired"):
            dirnames[:] = []
            continue
        for f in filenames:
            p = os.path.join(dirpath, f)
            with open(p, "rb") as fh:
                out[os.path.relpath(p, root)] = fh.read()
    return out

sa, sb = snap(sys.argv[1]), snap(sys.argv[2])
assert sa.keys() == sb.keys(), sorted(sa.keys() ^ sb.keys())
for k in sa:
    assert sa[k] == sb[k], f"{k} differs"
assert sa
EOF
echo "    replay from the chain re-derived a byte-identical store"

echo "==> tracescope watch --state restart smoke"
rm -f target/ci_watch_state.json
./target/release/tracescope watch target/ci_pack_smoke.store \
    --rounds 1 --state target/ci_watch_state.json > /dev/null
./target/release/tracescope watch target/ci_pack_smoke.store \
    --rounds 1 --state target/ci_watch_state.json > target/ci_watch_resume.log
grep -q "resuming from" target/ci_watch_resume.log
echo "    restarted watch resumed from the persisted watermark"

echo "==> bench_scale (regenerates BENCH_scale.json; RSS + detection + resume gates)"
cargo run --release -q -p iri-bench --bin bench_scale
python3 -c "
import json
r = json.load(open('BENCH_scale.json'))
assert r['schema'] == 'bench-scale-v2', r['schema']
assert r['resume']['heads_match'] is True
assert all(p['chain_head'] for p in r['scale_points'])
" || { echo "    BENCH_scale.json is not a well-formed v2 report"; exit 1; }
echo "    BENCH_scale.json is well-formed bench-scale-v2 JSON (chain heads stamped)"

echo "==> tracescope --connect smoke (live health + metrics surface)"
rm -rf target/ci_connect.store target/ci_serve.fifo target/ci_serve.log
mkfifo target/ci_serve.fifo
./target/release/iri-serve target/ci_connect.store --create-rows 2048 --addr 127.0.0.1:0 \
    < target/ci_serve.fifo > target/ci_serve.log &
SERVE_PID=$!
exec 9> target/ci_serve.fifo
i=0
while ! grep -q "listening on" target/ci_serve.log 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "    iri-serve did not come up"; kill "$SERVE_PID"; exit 1; }
    sleep 0.1
done
SERVE_ADDR=$(sed -n 's/^listening on //p' target/ci_serve.log)
./target/release/iriq --connect "$SERVE_ADDR" count-by-class > /dev/null
./target/release/tracescope --connect "$SERVE_ADDR" > target/ci_tracescope.log
grep -q "span tracer" target/ci_tracescope.log
grep -q "serve.plan.total_us" target/ci_tracescope.log
echo "quit" >&9
exec 9>&-
wait "$SERVE_PID"
echo "    tracescope --connect rendered health + metrics from a live server"

echo "ci: all green"
