//! Integration: the IGP substrate driving BGP through the full simulator,
//! and incident detection over simulated days.

use iri_bench::logged_to_events;
use iri_bgp::attrs::{Origin, PathAttributes};
use iri_bgp::path::AsPath;
use iri_bgp::types::Asn;
use iri_core::stats::incidents::detect_incidents;
use iri_core::taxonomy::UpdateClass;
use iri_core::Classifier;
use iri_igp::redistribute::mutual_redistribution_experiment;
use iri_igp::rip::{RipNetwork, UPDATE_PERIOD_MS};
use iri_netsim::{RouterConfig, World, HOUR, MINUTE};
use std::net::Ipv4Addr;

/// The IGP→BGP→exchange pipeline: RIP convergence events become BGP
/// originations which classify sensibly at the route server.
#[test]
fn igp_events_drive_bgp_updates() {
    let (out_a, _) = mutual_redistribution_experiment(5 * 60_000, 90 * 60_000);
    assert!(!out_a.is_empty());

    let mut world = World::new(5);
    let border = world.add_router(RouterConfig::well_behaved(
        "border",
        Asn(100),
        Ipv4Addr::new(10, 0, 0, 1),
    ));
    let rs = world.add_router(RouterConfig::route_server(
        "RS",
        Asn(237),
        Ipv4Addr::new(10, 0, 0, 250),
    ));
    world.attach_monitor(rs);
    world.connect(border, rs, 1);
    for e in &out_a {
        match e.med {
            Some(med) => {
                let mut attrs = PathAttributes::new(
                    Origin::Incomplete,
                    AsPath::from_sequence([Asn(65_001)]),
                    Ipv4Addr::new(10, 0, 0, 1),
                );
                attrs.med = Some(med);
                world.schedule_originate_with(2 * MINUTE + e.time_ms, border, e.prefix, attrs);
            }
            None => world.schedule_withdraw(2 * MINUTE + e.time_ms, border, e.prefix),
        }
    }
    world.start();
    world.run_until(2 * HOUR);
    let monitor = world.take_monitor(rs).unwrap();
    let events = logged_to_events(&monitor.updates);
    assert!(!events.is_empty());
    let mut c = Classifier::new();
    let classified = c.classify_all(&events);
    // MED-only churn through a stateful border → AADup policy fluctuations.
    assert!(c.count(UpdateClass::AaDup) > 0);
    assert!(c.policy_change_count() > 0);
    let _ = classified;
}

/// RIP timers quantise all IGP-side changes to whole seconds of the
/// 30-second advertisement grid.
#[test]
fn rip_changes_are_grid_timed() {
    let mut net = RipNetwork::new();
    let a = net.add_node(4_000);
    let b = net.add_node(11_000);
    let c = net.add_node(23_000);
    net.add_link(a, b, 1);
    net.add_link(b, c, 1);
    net.attach_prefix(a, "10.50.0.0/16".parse().unwrap());
    net.run_until(10 * UPDATE_PERIOD_MS);
    let changes = net.take_changes();
    assert!(!changes.is_empty());
    for ch in changes.iter().filter(|c| c.time_ms > 0) {
        let on_some_grid = [4_000u64, 11_000, 23_000]
            .iter()
            .any(|phase| ch.time_ms >= *phase && (ch.time_ms - phase) % UPDATE_PERIOD_MS == 0);
        assert!(
            on_some_grid,
            "change at {} not on any node grid",
            ch.time_ms
        );
    }
}

/// §4.1 incident detection over real simulated days: an upgrade-incident
/// day triggers the order-of-magnitude detector where a normal day does
/// not.
#[test]
fn incident_detector_fires_on_upgrade_day() {
    let (cfg, graph) = iri_bench::ExperimentConfig::at_scale(0.02);
    let normal = iri_bench::summarize_day(&cfg.scenario, &graph, 43); // mid-May weekday
    let incident = iri_bench::summarize_day(&cfg.scenario, &graph, 59); // May 30

    let normal_bins = normal.instability_bins;
    let incident_bins = incident.instability_bins;
    let normal_incidents = detect_incidents(&normal_bins, 10.0, 36);
    let incident_incidents = detect_incidents(&incident_bins, 10.0, 36);
    assert!(
        incident_incidents.len() > normal_incidents.len()
            || incident_bins.iter().sum::<u64>() > 5 * normal_bins.iter().sum::<u64>(),
        "the upgrade day must register as pathological: {} vs {} incidents, {} vs {} volume",
        incident_incidents.len(),
        normal_incidents.len(),
        incident_bins.iter().sum::<u64>(),
        normal_bins.iter().sum::<u64>(),
    );
}
