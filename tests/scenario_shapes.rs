//! Shape tests on the full scenario pipeline at test-friendly scale:
//! the statistical signatures every figure relies on must be present even
//! in small runs.

use iri_bench::summarize_day;
use iri_core::taxonomy::UpdateClass;
use iri_topology::asgraph::{AsGraph, GraphConfig};
use iri_topology::scenario::ScenarioConfig;

fn small() -> (ScenarioConfig, AsGraph) {
    let graph = AsGraph::generate(&GraphConfig::default_scaled(0.02));
    let mut cfg = ScenarioConfig::default_for(graph.prefix_count());
    cfg.warmup_minutes = 15;
    (cfg, graph)
}

#[test]
fn duplicates_dominate_diffs() {
    let (cfg, graph) = small();
    let s = summarize_day(&cfg, &graph, 17);
    let b = &s.breakdown;
    let dup = b.get(UpdateClass::AaDup) + b.get(UpdateClass::WaDup) + b.get(UpdateClass::WwDup);
    let diff = b.get(UpdateClass::AaDiff) + b.get(UpdateClass::WaDiff);
    assert!(
        dup > 5 * diff.max(1),
        "pathological duplicates must dominate: {dup} vs {diff}"
    );
}

#[test]
fn thirty_second_bins_dominate_interarrival() {
    let (cfg, graph) = small();
    let s = summarize_day(&cfg, &graph, 17);
    // WADup and AADup (indices 2 and 3 in FIGURE_CATEGORIES) are timer-locked.
    for ci in [2usize, 3] {
        let d = &s.interarrivals[ci];
        if d.gaps < 50 {
            continue;
        }
        let mass = d.proportions[2] + d.proportions[3];
        assert!(
            mass > 0.4,
            "class {:?}: 30s+1m mass {mass:.2} too small over {} gaps",
            d.class,
            d.gaps
        );
    }
}

#[test]
fn most_routes_stay_stable() {
    let (cfg, graph) = small();
    let s = summarize_day(&cfg, &graph, 17);
    assert!(
        s.affected.stable_fraction() > 0.6,
        "most routes must be instability-free: {:.2}",
        s.affected.stable_fraction()
    );
    // Forwarding-instability classes touch small fractions.
    assert!(s.affected.fraction(UpdateClass::WaDiff) < 0.3);
    assert!(s.affected.fraction(UpdateClass::AaDiff) < 0.3);
}

#[test]
fn persistence_mostly_under_five_minutes() {
    let (cfg, graph) = small();
    let s = summarize_day(&cfg, &graph, 17);
    assert!(
        s.persistence_under_5min > 0.5,
        "most multi-event episodes must resolve within 5 minutes: {:.2}",
        s.persistence_under_5min
    );
}

#[test]
fn update_volume_exceeds_topology_expectation() {
    let (cfg, graph) = small();
    let s = summarize_day(&cfg, &graph, 17);
    let per_prefix = s.total_events as f64 / s.census.prefixes.max(1) as f64;
    assert!(
        per_prefix > 5.0,
        "updates must exceed one-per-topology-change by far: {per_prefix:.1}/prefix/day"
    );
}

#[test]
fn incident_day_has_more_updates() {
    let (cfg, graph) = small();
    // Day 58 is inside the May 28 – Jun 4 upgrade incident; day 50 is not.
    let normal = summarize_day(&cfg, &graph, 50);
    let incident = summarize_day(&cfg, &graph, 58);
    let normal_instability: u64 = normal.instability_bins.iter().sum();
    let incident_instability: u64 = incident.instability_bins.iter().sum();
    assert!(
        incident_instability > normal_instability,
        "the upgrade incident must dominate: {incident_instability} vs {normal_instability}"
    );
}

#[test]
fn damping_reduces_visible_instability() {
    let (mut cfg, graph) = small();
    let base = summarize_day(&cfg, &graph, 17);
    cfg.damping = true;
    let damped = summarize_day(&cfg, &graph, 17);
    // Damping at the providers absorbs repeated flaps before they cross
    // the exchange a second time; total classified events must drop.
    assert!(
        damped.total_events < base.total_events,
        "damping must reduce update volume: {} vs {}",
        damped.total_events,
        base.total_events
    );
}

#[test]
fn table_census_is_sane() {
    let (cfg, graph) = small();
    let s = summarize_day(&cfg, &graph, 17);
    assert!(s.census.prefixes as f64 >= graph.prefix_count() as f64 * 0.9);
    assert!(s.census.autonomous_systems > graph.providers.len());
    assert!(s.census.unique_paths > graph.providers.len());
    assert!(s.census.multihomed > 0);
}
