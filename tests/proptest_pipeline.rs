//! Property test: the sharded parallel pipeline is *exactly* equivalent to
//! the sequential classifier + batch statistics, for arbitrary event
//! streams and every worker count 1–8.
//!
//! This is the load-bearing guarantee of `iri-pipeline`: sharding by
//! `(peer AS, prefix)` keeps every stateful statistic shard-local, so the
//! merged result must match the sequential run bit for bit — class counts,
//! Table 1 rows, inter-arrival histograms, CDFs, affected-route sets,
//! ten-minute bins, and episodes (modulo sort-key ties, which are
//! tie-unstable even sequentially, so both sides are sorted by a total
//! key before comparing).

use internet_routing_instability::core::input::{PeerKey, UpdateEvent};
use internet_routing_instability::core::stats::affected::{affected_day, affected_tuples};
use internet_routing_instability::core::stats::bins::{instability_filter, ten_minute_bins};
use internet_routing_instability::core::stats::cdf::prefix_as_cdf;
use internet_routing_instability::core::stats::daily::provider_daily_totals;
use internet_routing_instability::core::stats::interarrival::day_interarrival;
use internet_routing_instability::core::stats::persistence::{episodes, Episode};
use internet_routing_instability::core::taxonomy::UpdateClass;
use internet_routing_instability::core::Classifier;
use internet_routing_instability::pipeline::{analyze_events, PipelineConfig, DEFAULT_QUIET_MS};
use iri_bgp::attrs::{Origin, PathAttributes};
use iri_bgp::path::AsPath;
use iri_bgp::types::{Asn, Prefix};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Raw event description: (time gap ms, peer 0–5, prefix 0–23, action).
/// Action 0 is a withdrawal; 1–5 announce one of five distinct routes, so
/// streams hit every taxonomy class (duplicates, diffs, WWDup, …).
fn raw_stream() -> impl Strategy<Value = Vec<(u32, u8, u8, u8)>> {
    proptest::collection::vec((0u32..400_000, 0u8..6, 0u8..24, 0u8..6), 0..400)
}

fn build_events(raw: &[(u32, u8, u8, u8)]) -> Vec<UpdateEvent> {
    let mut t = 0u64;
    let mut out = Vec::with_capacity(raw.len());
    for &(gap, peer, prefix, action) in raw {
        t += u64::from(gap);
        let peer = PeerKey {
            asn: Asn(7000 + u32::from(peer % 3)), // 2 peers share an AS
            addr: Ipv4Addr::new(192, 0, 2, peer),
        };
        let prefix = Prefix::from_raw(0x0a00_0000 | (u32::from(prefix) << 16), 16);
        out.push(if action == 0 {
            UpdateEvent::withdraw(t, peer, prefix)
        } else {
            let attrs = PathAttributes::new(
                Origin::Igp,
                AsPath::from_sequence([Asn(u32::from(action)), peer.asn]),
                Ipv4Addr::new(10, 0, 0, action),
            );
            UpdateEvent::announce(t, peer, prefix, attrs)
        });
    }
    out
}

/// Total sort key: episode comparison must not depend on tie order.
fn episode_key(e: &Episode) -> (u64, u32, u8, u32, u64, u32) {
    (
        e.start_ms,
        e.prefix.bits(),
        e.prefix.len(),
        e.asn.0,
        e.end_ms,
        e.events,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_equals_sequential_for_all_worker_counts(raw in raw_stream()) {
        let events = build_events(&raw);

        // Sequential reference: classify in stream order, batch statistics.
        let mut seq = Classifier::new();
        let classified = seq.classify_all(&events);
        let seq_daily = provider_daily_totals(&classified);
        let seq_bins = ten_minute_bins(&classified, instability_filter);
        let mut seq_eps = episodes(&classified, DEFAULT_QUIET_MS);
        seq_eps.sort_by_key(episode_key);

        for jobs in 1..=8usize {
            let mut cfg = PipelineConfig::with_jobs(jobs);
            cfg.batch_size = 17; // deliberately tiny: exercise batch edges
            cfg.queue_depth = 2;
            let result = analyze_events(&events, &cfg).expect("pipeline run");

            // Classifier state.
            prop_assert_eq!(result.classifier.total(), seq.total());
            prop_assert_eq!(result.classifier.tracked_pairs(), seq.tracked_pairs());
            prop_assert_eq!(
                result.classifier.policy_change_count(),
                seq.policy_change_count()
            );
            for class in UpdateClass::ALL {
                prop_assert_eq!(result.classifier.count(class), seq.count(class));
            }

            // Per-figure sinks against the batch functions.
            let sinks = &result.sinks;
            prop_assert_eq!(sinks.events, events.len() as u64);
            for class in UpdateClass::ALL {
                prop_assert_eq!(
                    sinks.breakdown.finish().get(class),
                    classified.iter().filter(|e| e.class == class).count() as u64
                );
            }
            prop_assert_eq!(sinks.daily.finish(), seq_daily.clone());
            for class in UpdateClass::FIGURE_CATEGORIES {
                let par_ia = sinks.interarrival.finish(class);
                let seq_ia = day_interarrival(&classified, class);
                prop_assert_eq!(par_ia.gaps, seq_ia.gaps);
                prop_assert_eq!(par_ia.proportions, seq_ia.proportions);
                let par_cdf = sinks.cdf.finish(class);
                let seq_cdf = prefix_as_cdf(&classified, class);
                prop_assert_eq!(par_cdf.pair_counts, seq_cdf.pair_counts);
                prop_assert_eq!(par_cdf.total, seq_cdf.total);
            }
            let par_aff = sinks.affected.finish(64, 0);
            let seq_aff = affected_day(&classified, 64, 0);
            prop_assert_eq!(par_aff.per_class, seq_aff.per_class);
            prop_assert_eq!(par_aff.any_category, seq_aff.any_category);
            prop_assert_eq!(par_aff.any_instability, seq_aff.any_instability);
            prop_assert_eq!(par_aff.any_forwarding, seq_aff.any_forwarding);
            prop_assert_eq!(
                sinks.affected.tuples_fraction(64),
                affected_tuples(&classified, 64)
            );
            prop_assert_eq!(sinks.bins.finish(), seq_bins);
            let mut par_eps = sinks.episodes.finish();
            par_eps.sort_by_key(episode_key);
            prop_assert_eq!(&par_eps, &seq_eps);

            // Telemetry accounting is complete and consistent.
            prop_assert_eq!(result.metrics.jobs, jobs);
            prop_assert_eq!(result.metrics.total_events, events.len() as u64);
            let worked: u64 = result.metrics.workers.iter().map(|w| w.events).sum();
            prop_assert_eq!(worked, events.len() as u64);
        }
    }
}
