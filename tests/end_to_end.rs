//! End-to-end integration tests spanning every crate: simulator → monitor
//! → MRT → classifier → statistics.

use iri_bgp::types::{Asn, Prefix};
use iri_core::input::events_from_mrt;
use iri_core::taxonomy::UpdateClass;
use iri_core::Classifier;
use iri_mrt::{MrtReader, MrtWriter};
use iri_netsim::{
    build_exchange, provider_mix, CsuFault, ExchangePoint, RouterConfig, World, HOUR, MINUTE,
    SECOND,
};
use std::net::Ipv4Addr;

/// The full measurement pipeline: a simulated exchange hour survives an
/// MRT round-trip and classifies identically to the in-memory log.
#[test]
fn pipeline_mrt_roundtrip_preserves_classification() {
    let mut world = World::new(42);
    let cfgs = provider_mix(ExchangePoint::Aads, 0.15, 0.5, 6000);
    let ex = build_exchange(&mut world, ExchangePoint::Aads, cfgs);
    for (i, &p) in ex.providers.iter().enumerate() {
        let pfx = Prefix::from_raw(0x0a00_0000 | ((i as u32) << 16), 16);
        world.schedule_originate(5 * SECOND, p, pfx);
        world.schedule_flap(2 * MINUTE, p, pfx, 45 * SECOND);
        world.schedule_flap(10 * MINUTE, p, pfx, 90 * SECOND);
    }
    world.start();
    world.run_until(HOUR);
    let monitor = world.take_monitor(ex.route_server).unwrap();
    assert!(monitor.prefix_event_count() > 0);

    // In-memory classification.
    let direct_events = iri_bench::logged_to_events(&monitor.updates);
    let mut c1 = Classifier::new();
    let direct = c1.classify_all(&direct_events);

    // Through the MRT file format.
    let records = monitor.to_mrt(Asn(237), Ipv4Addr::new(9, 9, 9, 9), 833_000_000);
    let mut buf = Vec::new();
    let mut w = MrtWriter::new(&mut buf);
    for r in &records {
        w.write(r).unwrap();
    }
    let mut reader = MrtReader::new(buf.as_slice());
    let replayed: Vec<_> = reader.iter().collect::<Result<_, _>>().unwrap();
    let mrt_events = events_from_mrt(&replayed, 833_000_000);
    let mut c2 = Classifier::new();
    let via_mrt = c2.classify_all(&mrt_events);

    // Same event count and identical per-class totals (timestamps lose
    // sub-second precision through MRT, but ordering within the log is
    // preserved, so classes match).
    assert_eq!(direct.len(), via_mrt.len());
    for class in UpdateClass::ALL {
        assert_eq!(c1.count(class), c2.count(class), "{class}");
    }
}

/// A scripted single-prefix history produces exactly the paper's classes
/// at the monitor, end to end through the simulator.
#[test]
fn scripted_flap_classifies_as_wadup() {
    let mut world = World::new(7);
    let origin = world.add_router(RouterConfig::well_behaved(
        "origin",
        Asn(100),
        Ipv4Addr::new(10, 0, 0, 1),
    ));
    let rs = world.add_router(RouterConfig::route_server(
        "RS",
        Asn(237),
        Ipv4Addr::new(10, 0, 0, 250),
    ));
    world.attach_monitor(rs);
    world.connect(origin, rs, 1);
    let pfx: Prefix = "192.42.113.0/24".parse().unwrap();
    world.schedule_originate(10 * SECOND, origin, pfx);
    // One clean flap with an outage far longer than the MRAI window.
    world.schedule_withdraw(5 * MINUTE, origin, pfx);
    world.schedule_originate(8 * MINUTE, origin, pfx);
    world.run_until(0);
    world.start();
    world.run_until(15 * MINUTE);

    let monitor = world.take_monitor(rs).unwrap();
    let events = iri_bench::logged_to_events(&monitor.updates);
    let mut c = Classifier::new();
    let classified = c.classify_all(&events);
    let classes: Vec<UpdateClass> = classified.iter().map(|e| e.class).collect();
    assert_eq!(
        classes,
        vec![
            UpdateClass::NewAnnounce,
            UpdateClass::Withdraw,
            UpdateClass::WaDup
        ],
        "A, W, A-same must classify as NewAnnounce, Withdraw, WADup"
    );
}

/// The stateless-echo WWDup mechanism end to end: a flap at one provider
/// produces blind withdrawals from stateless peers that never announced
/// the prefix.
#[test]
fn stateless_peers_echo_wwdup() {
    let mut world = World::new(9);
    let rs = world.add_router(RouterConfig::route_server(
        "RS",
        Asn(237),
        Ipv4Addr::new(10, 0, 0, 250),
    ));
    world.attach_monitor(rs);
    let origin = world.add_router(RouterConfig::well_behaved(
        "origin",
        Asn(100),
        Ipv4Addr::new(10, 0, 0, 1),
    ));
    let echo = world.add_router(RouterConfig::pathological(
        "echo",
        Asn(200),
        Ipv4Addr::new(10, 0, 0, 2),
    ));
    world.connect(origin, rs, 1);
    world.connect(echo, rs, 1);
    let pfx: Prefix = "192.42.113.0/24".parse().unwrap();
    world.schedule_originate(10 * SECOND, origin, pfx);
    for k in 0..5u64 {
        world.schedule_flap(2 * MINUTE + k * 2 * MINUTE, origin, pfx, 50 * SECOND);
    }
    world.start();
    world.run_until(20 * MINUTE);

    let monitor = world.take_monitor(rs).unwrap();
    let events = iri_bench::logged_to_events(&monitor.updates);
    let mut c = Classifier::new();
    let classified = c.classify_all(&events);
    let wwdup_from_echo = classified
        .iter()
        .filter(|e| e.class == UpdateClass::WwDup && e.peer.asn == Asn(200))
        .count();
    assert!(
        wwdup_from_echo >= 4,
        "the stateless peer must blind-withdraw each flap (got {wwdup_from_echo})"
    );
    // And it must never have announced the prefix.
    let announced_by_echo = classified
        .iter()
        .any(|e| e.peer.asn == Asn(200) && e.class.is_announcement());
    assert!(
        !announced_by_echo,
        "the echo peer never announces — exactly the ISP-Y trace"
    );
}

/// Multihomed failover end to end: primary dies, the route survives via
/// the secondary, and the exchange sees the path change.
#[test]
fn multihomed_failover_preserves_reachability() {
    let mut world = World::new(11);
    let rs = world.add_router(RouterConfig::route_server(
        "RS",
        Asn(237),
        Ipv4Addr::new(10, 0, 0, 250),
    ));
    world.attach_monitor(rs);
    let p1 = world.add_router(RouterConfig::well_behaved(
        "P1",
        Asn(100),
        Ipv4Addr::new(10, 0, 0, 1),
    ));
    let p2 = world.add_router(RouterConfig::well_behaved(
        "P2",
        Asn(200),
        Ipv4Addr::new(10, 0, 0, 2),
    ));
    world.connect(p1, rs, 1);
    world.connect(p2, rs, 1);
    let pfx: Prefix = "198.32.5.0/24".parse().unwrap();
    // Customer AS 3000 behind both providers; longer path via P2.
    let attrs1 = iri_bgp::attrs::PathAttributes::new(
        iri_bgp::attrs::Origin::Igp,
        iri_bgp::path::AsPath::from_sequence([Asn(3000)]),
        Ipv4Addr::new(10, 0, 0, 1),
    );
    let mut attrs2 = attrs1.clone();
    attrs2.as_path = iri_bgp::path::AsPath::from_sequence([Asn(3000), Asn(3000)]);
    attrs2.next_hop = Ipv4Addr::new(10, 0, 0, 2);
    world.schedule_originate_with(10 * SECOND, p1, pfx, attrs1);
    world.schedule_originate_with(10 * SECOND, p2, pfx, attrs2);
    world.start();
    world.run_until(2 * MINUTE);

    // Both paths visible at the route server (multihomed).
    assert_eq!(world.router(rs).loc_rib().path_count(pfx), 2);
    let best = world.router(rs).loc_rib().best(pfx).unwrap().clone();
    assert_eq!(best.attrs.as_path.to_string(), "100 3000");

    // Primary withdraws: reachability survives via P2.
    world.schedule_withdraw(3 * MINUTE, p1, pfx);
    world.run_until(6 * MINUTE);
    let best = world
        .router(rs)
        .loc_rib()
        .best(pfx)
        .expect("still reachable");
    assert_eq!(best.attrs.as_path.to_string(), "200 3000 3000");
}

/// CSU oscillation through a stateless provider shows the 30-second
/// inter-arrival signature at the monitor.
#[test]
fn csu_thirty_second_periodicity_at_monitor() {
    let mut world = World::new(13);
    let rs = world.add_router(RouterConfig::route_server(
        "RS",
        Asn(237),
        Ipv4Addr::new(10, 0, 0, 250),
    ));
    world.attach_monitor(rs);
    let origin = world.add_router(RouterConfig::pathological(
        "origin",
        Asn(100),
        Ipv4Addr::new(10, 0, 0, 1),
    ));
    world.connect(origin, rs, 1);
    let pfx: Prefix = "192.42.113.0/24".parse().unwrap();
    world.add_access_link(origin, vec![pfx], Some(CsuFault::beat_30s(MINUTE)));
    world.start();
    world.run_until(30 * MINUTE);

    let monitor = world.take_monitor(rs).unwrap();
    let events = iri_bench::logged_to_events(&monitor.updates);
    let mut c = Classifier::new();
    let classified = c.classify_all(&events);
    // Inter-arrival mass concentrates in the 30s/1m bins.
    let mut mass_30_60 = 0.0;
    let mut total = 0.0;
    for class in UpdateClass::ALL {
        let d = iri_core::stats::interarrival::day_interarrival(&classified, class);
        if d.gaps > 0 {
            mass_30_60 += (d.proportions[2] + d.proportions[3]) * d.gaps as f64;
            total += d.gaps as f64;
        }
    }
    assert!(total > 10.0, "the oscillator must generate traffic");
    assert!(
        mass_30_60 / total > 0.8,
        "30s/1m bins must dominate: {:.2}",
        mass_30_60 / total
    );
}

/// Determinism across the whole stack: same seed, same classified stream.
#[test]
fn full_stack_determinism() {
    let run = || {
        let mut world = World::new(0xd_5eed);
        let cfgs = provider_mix(ExchangePoint::MaeWest, 0.1, 0.6, 5000);
        let ex = build_exchange(&mut world, ExchangePoint::MaeWest, cfgs);
        for (i, &p) in ex.providers.iter().enumerate() {
            let pfx = Prefix::from_raw(0x0a00_0000 | ((i as u32) << 16), 16);
            world.schedule_originate(SECOND, p, pfx);
            world.schedule_flap(MINUTE + (i as u64) * 10 * SECOND, p, pfx, 40 * SECOND);
        }
        world.add_access_link(
            ex.providers[0],
            vec!["192.42.113.0/24".parse().unwrap()],
            Some(CsuFault::beat_30s(30 * SECOND)),
        );
        world.start();
        world.run_until(20 * MINUTE);
        let monitor = world.take_monitor(ex.route_server).unwrap();
        let events = iri_bench::logged_to_events(&monitor.updates);
        let mut c = Classifier::new();
        let classified = c.classify_all(&events);
        classified
            .iter()
            .map(|e| (e.time_ms, e.peer.asn.0, e.prefix.bits(), e.class))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
