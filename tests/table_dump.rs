//! TABLE_DUMP end to end: the "routing table snapshots" side of the
//! paper's methodology. A world's route-server table survives an MRT
//! TABLE_DUMP round-trip and produces the same census as the live RIB.

use iri_bgp::attrs::{Origin, PathAttributes};
use iri_bgp::path::AsPath;
use iri_bgp::types::{Asn, Prefix};
use iri_mrt::{MrtReader, MrtRecord, MrtWriter};
use iri_netsim::{RouterConfig, World, MINUTE, SECOND};
use iri_rib::stats::{census, census_from_entries};
use std::net::Ipv4Addr;

#[test]
fn table_dump_roundtrip_preserves_census() {
    let mut w = World::new(17);
    let rs = w.add_router(RouterConfig::route_server(
        "RS",
        Asn(237),
        Ipv4Addr::new(10, 0, 0, 250),
    ));
    let p1 = w.add_router(RouterConfig::well_behaved(
        "P1",
        Asn(100),
        Ipv4Addr::new(10, 0, 0, 1),
    ));
    let p2 = w.add_router(RouterConfig::well_behaved(
        "P2",
        Asn(200),
        Ipv4Addr::new(10, 0, 0, 2),
    ));
    w.connect(p1, rs, 1);
    w.connect(p2, rs, 1);
    // Eight prefixes, two of them multihomed via both providers.
    for i in 0..8u32 {
        let pfx = Prefix::from_raw(0x0a00_0000 | (i << 16), 16);
        let customer = Asn(4000 + i);
        let attrs = |hop: u8, extra: bool| {
            let mut a = PathAttributes::new(
                Origin::Igp,
                if extra {
                    AsPath::from_sequence([customer, customer])
                } else {
                    AsPath::from_sequence([customer])
                },
                Ipv4Addr::new(10, 0, 0, hop),
            );
            a.med = Some(i);
            a
        };
        w.schedule_originate_with(5 * SECOND, p1, pfx, attrs(1, false));
        if i < 2 {
            w.schedule_originate_with(5 * SECOND, p2, pfx, attrs(2, true));
        }
    }
    w.start();
    w.run_until(3 * MINUTE);

    // Live census.
    let live = census(w.router(rs).loc_rib());
    assert_eq!(live.prefixes, 8);
    assert_eq!(live.multihomed, 2);

    // Dump → MRT bytes → parse → census.
    let records = w.table_dump(rs, 833_000_000);
    assert_eq!(records.len(), 8);
    let mut buf = Vec::new();
    let mut writer = MrtWriter::new(&mut buf);
    for r in &records {
        writer.write(r).unwrap();
    }
    let mut reader = MrtReader::new(buf.as_slice());
    let replayed: Vec<MrtRecord> = reader.iter().collect::<Result<_, _>>().unwrap();
    assert_eq!(replayed, records);

    let entries: Vec<(Prefix, &AsPath, usize)> = replayed
        .iter()
        .filter_map(|r| match r {
            MrtRecord::TableDump(t) => {
                let path_count = w.router(rs).loc_rib().path_count(t.prefix);
                Some((t.prefix, &t.attrs.as_path, path_count))
            }
            _ => None,
        })
        .collect();
    let from_dump = census_from_entries(entries);
    assert_eq!(from_dump.prefixes, live.prefixes);
    assert_eq!(from_dump.unique_paths, live.unique_paths);
    assert_eq!(from_dump.autonomous_systems, live.autonomous_systems);
    assert_eq!(from_dump.multihomed, live.multihomed);
    assert_eq!(from_dump.per_origin, live.per_origin);

    // The dump records full attributes (MED survives).
    let meds: Vec<Option<u32>> = replayed
        .iter()
        .filter_map(|r| match r {
            MrtRecord::TableDump(t) => Some(t.attrs.med),
            _ => None,
        })
        .collect();
    assert!(meds.iter().all(Option::is_some));
}
