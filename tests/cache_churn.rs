//! §3/§6 of the paper: the route-caching forwarding architecture and why
//! pathological updates are comparatively benign.
//!
//! "Since pathological, or redundant, routing information does not affect
//! a router's forwarding tables or cache, the overall impact of this
//! phenomena may be relatively benign … these pathological updates will
//! not trigger router cache churn and the resultant cache misses and
//! subsequent packet loss."

use iri_bgp::types::{Asn, Prefix};
use iri_netsim::{RouterConfig, World, MINUTE, SECOND};
use std::net::Ipv4Addr;

fn world_with_victim() -> (
    World,
    iri_netsim::RouterId,
    iri_netsim::RouterId,
    iri_netsim::RouterId,
) {
    let mut w = World::new(3);
    // The source runs the pathological profile *with* the withdrawal-storm
    // misconfiguration on a fast cadence, so one real withdrawal turns into
    // a stream of redundant re-withdrawals.
    let mut cfg = RouterConfig::pathological("source", Asn(666), Ipv4Addr::new(10, 0, 0, 1));
    cfg.withdrawal_storm = Some(2); // re-blast every ~minute
    let source = w.add_router(cfg);
    let victim = w.add_router(RouterConfig::well_behaved(
        "victim",
        Asn(100),
        Ipv4Addr::new(10, 0, 0, 2),
    ));
    let far = w.add_router(RouterConfig::well_behaved(
        "far",
        Asn(200),
        Ipv4Addr::new(10, 0, 0, 3),
    ));
    w.connect(source, victim, 1);
    w.connect(victim, far, 1);
    (w, source, victim, far)
}

/// Redundant withdrawals (WWDup at the receiver) do not touch the
/// forwarding cache; real flaps do — churn counts the difference.
#[test]
fn pathological_updates_do_not_churn_the_cache() {
    // World A: a prefix that genuinely flaps 10 times.
    let (mut wa, source, victim, _far) = world_with_victim();
    let pfx: Prefix = "192.42.113.0/24".parse().unwrap();
    wa.schedule_originate(10 * SECOND, source, pfx);
    for k in 0..10u64 {
        wa.schedule_flap(MINUTE + k * 2 * MINUTE, source, pfx, 50 * SECOND);
    }
    wa.run_until(0);
    wa.start();
    wa.run_until(30 * MINUTE);
    let churn_flaps = wa.router(victim).counters.cache_invalidations;

    // World B: one legitimate announce + one legitimate withdraw; the
    // storm bug then re-withdraws the dead prefix every minute — pure
    // redundant (WWDup) load at the victim.
    let (mut wb, source, victim, _far) = world_with_victim();
    let doomed: Prefix = "198.51.100.0/24".parse().unwrap();
    wb.schedule_originate(10 * SECOND, source, pfx);
    wb.schedule_originate(10 * SECOND, source, doomed);
    wb.schedule_withdraw(2 * MINUTE, source, doomed);
    wb.start();
    wb.run_until(30 * MINUTE);
    let victim_b = wb.router(victim);
    let churn_redundant = victim_b.counters.cache_invalidations;
    let spurious = victim_b.counters.spurious_withdrawals_rx;

    assert!(
        churn_flaps > churn_redundant + 10,
        "real flaps must churn the cache far more: {churn_flaps} vs {churn_redundant}"
    );
    // The redundant withdrawals did arrive (they consumed CPU)…
    assert!(
        spurious > 0,
        "the victim must actually receive the redundant withdrawals"
    );
    // …but the only cache activity in world B is the legitimate announce/
    // withdraw pair plus the stable announcement.
    assert!(
        churn_redundant <= 3,
        "redundant updates must not churn the cache: {churn_redundant}"
    );
}

/// "Even pathological updates require some minimal router resources":
/// the CPU busy-line advances for redundant traffic even though the
/// forwarding state never changes.
#[test]
fn pathological_updates_still_consume_cpu() {
    let (mut w, source, victim, _far) = world_with_victim();
    let doomed: Prefix = "203.0.113.0/24".parse().unwrap();
    w.schedule_originate(10 * SECOND, source, doomed);
    w.schedule_withdraw(2 * MINUTE, source, doomed);
    w.start();
    w.run_until(40 * MINUTE);
    let v = w.router(victim);
    assert!(v.counters.updates_rx > 10, "storm updates must arrive");
    // The announce + legit withdraw churn twice; the storm adds nothing.
    assert!(v.counters.cache_invalidations <= 2);
    assert!(
        v.counters.spurious_withdrawals_rx > 10,
        "the re-blasted withdrawals are spurious at the victim"
    );
}
